//! WSN monitoring: the paper's six-mote TelosB network running CTP, with a
//! selective-forwarding attacker at the intermediate hop. Kalis starts with
//! an *empty* configuration (the §VI-C reactivity setting), autonomously
//! discovers the multi-hop topology, activates the watchdog modules, and
//! catches the attack.
//!
//! Run with: `cargo run --example wsn_monitoring`

use kalis_attacks::{SelectiveForwardPolicy, TruthLog};
use kalis_bench::runner;
use kalis_bench::scoring;
use kalis_core::config::Config;
use kalis_core::{Kalis, KalisId};
use kalis_netsim::behaviors::{CtpForwarderBehavior, CtpSensorBehavior, CtpSinkBehavior};
use kalis_netsim::prelude::*;
use std::time::Duration;

fn main() {
    let truth = TruthLog::new();
    let mut sim = Simulator::new(11);
    // Collection tree: 3,4,6 → 2 → 1; 5 → 1.
    let sink = sim.add_node(NodeSpec::new("sink").with_short_addr(ShortAddr(1)));
    sim.set_behavior(sink, CtpSinkBehavior::new(ShortAddr(1)));
    let fwd = sim.add_node(
        NodeSpec::new("forwarder")
            .with_position(10.0, 0.0)
            .with_short_addr(ShortAddr(2)),
    );
    sim.set_behavior(
        fwd,
        CtpForwarderBehavior::with_policy(
            ShortAddr(2),
            ShortAddr(1),
            SelectiveForwardPolicy::new(ShortAddr(2), 0.5, truth.clone()),
        ),
    );
    for (addr, x, y, parent) in [
        (3u16, 20.0, 0.0, 2u16),
        (4, 18.0, 6.0, 2),
        (5, 5.0, 5.0, 1),
        (6, 12.0, -6.0, 2),
    ] {
        let node = sim.add_node(
            NodeSpec::new(format!("mote-{addr}"))
                .with_position(x, y)
                .with_short_addr(ShortAddr(addr)),
        );
        sim.set_behavior(
            node,
            CtpSensorBehavior::leaf(ShortAddr(addr), ShortAddr(parent)),
        );
    }
    let tap = sim.add_tap("154-0", Position::new(10.0, 2.0), &[Medium::Ieee802154]);
    sim.run_for(Duration::from_secs(60));

    // Kalis with an empty config: no modules pinned, no a-priori knowledge.
    let mut kalis = Kalis::builder(KalisId::new("K1"))
        .with_config(Config::empty())
        .with_default_modules()
        .build();
    println!(
        "modules active before traffic: {:?}",
        kalis.active_modules()
    );
    let captures = tap.drain();
    let outcome = runner::run_kalis_instance(&mut kalis, &captures);
    println!(
        "modules active after discovery: {:?}",
        kalis.active_modules()
    );
    println!(
        "learned: Multihop={:?} MonitoredNodes={:?} CtpRoot={:?}",
        kalis.knowledge().get_bool("Multihop"),
        kalis.knowledge().get_int("MonitoredNodes"),
        kalis.knowledge().get_text("CtpRoot"),
    );
    let score = scoring::score(&truth.instances(), &outcome.detections);
    println!(
        "symptoms={} detected={} detection-rate={:.0}%",
        score.instances,
        score.detected,
        score.detection_rate() * 100.0
    );
    for d in &outcome.detections {
        println!(
            "  {} {} suspects={:?}",
            d.time,
            d.attack.label(),
            d.suspects
        );
    }
    assert!(score.detection_rate() > 0.9);
}
