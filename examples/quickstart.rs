//! Quickstart: build a tiny IoT network in the simulator, attach a Kalis
//! node to a promiscuous tap, inject an ICMP flood, and watch Kalis
//! discover the topology, activate the right detection module, and revoke
//! the attacker.
//!
//! Run with: `cargo run --example quickstart`

use std::net::Ipv4Addr;
use std::time::Duration;

use kalis_attacks::{IcmpFloodAttacker, TruthLog};
use kalis_core::capture::PollSource;
use kalis_core::{Kalis, KalisId};
use kalis_netsim::behaviors::{PingBehavior, PingResponderBehavior};
use kalis_netsim::prelude::*;
use kalis_packets::MacAddr;

fn main() {
    // 1. A small single-hop WiFi network: two devices pinging each other.
    let mut sim = Simulator::new(7);
    let victim_ip = Ipv4Addr::new(10, 0, 0, 2);
    let router_mac = MacAddr::from_index(0);
    let _router = sim.add_node(NodeSpec::new("router").with_radio(RadioConfig::wifi()));
    let victim = sim.add_node(
        NodeSpec::new("thermostat")
            .with_position(5.0, 0.0)
            .with_radio(RadioConfig::wifi()),
    );
    sim.set_behavior(
        victim,
        PingResponderBehavior::new(MacAddr::from_index(1), victim_ip, router_mac),
    );
    let pinger = sim.add_node(
        NodeSpec::new("laptop")
            .with_position(-5.0, 0.0)
            .with_radio(RadioConfig::wifi()),
    );
    sim.set_behavior(
        pinger,
        PingBehavior::new(
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 3),
            router_mac,
            router_mac,
            victim_ip,
            Duration::from_secs(1),
        ),
    );

    // 2. An attacker flooding the thermostat with ICMP echo replies.
    let truth = TruthLog::new();
    let attacker = sim.add_node(
        NodeSpec::new("attacker")
            .with_position(3.0, -4.0)
            .with_radio(RadioConfig::wifi()),
    );
    sim.set_behavior(
        attacker,
        IcmpFloodAttacker::new(victim_ip, truth.clone()).with_bursts(3, Duration::from_secs(12)),
    );

    // 3. Kalis observes through a promiscuous tap.
    let tap = sim.add_tap("wlan0", Position::new(1.0, 1.0), &[Medium::Wifi]);
    sim.run_for(Duration::from_secs(45));

    let mut kalis = Kalis::builder(KalisId::new("K1"))
        .with_default_modules()
        .build();
    let mut source = PollSource::new("wlan0", move || tap.pop());
    kalis.process_source(&mut source);

    // 4. What did it learn, and what did it find?
    println!("knowledge base ({} knowggets):", kalis.knowledge().len());
    for knowgget in kalis.knowledge().iter() {
        println!("  {knowgget}");
    }
    println!("\nactive modules: {:?}", kalis.active_modules());
    println!("\nalerts:");
    for alert in kalis.alerts() {
        println!("  {alert}");
    }
    let attacker_entity = kalis_packets::Entity::from(MacAddr::from_index(attacker.0));
    println!(
        "\nattacker {} revoked: {}",
        attacker_entity,
        kalis
            .response()
            .is_revoked(&attacker_entity, kalis_packets::Timestamp::from_secs(44))
    );
    assert!(!kalis.alerts().is_empty(), "the flood must be detected");
}
