//! Grab a diagnostics bundle from a live node: run the adversarial
//! identity spray through a node with the ops listener enabled until
//! the flight recorder latches a `kalis.diag.v1` capture, then fetch
//! it over TCP the way an operator would and validate it with the
//! strict bundle checker (exit 1 on any violation — this is the CI
//! diag smoke gate).
//!
//! Artifacts land in `target/diag/`:
//!
//! - `target/diag/index.json` — the `/debug/diag` capture index
//! - `target/diag/bundle.json` — the newest bundle, ready for
//!   `kalis-trace --diag target/diag/bundle.json`
//!
//! Run with: `cargo run --example diag_endpoint [PORT]`

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

use kalis_bench::experiments::spray_trace;
use kalis_core::{Kalis, KalisId, OpsConfig};
use kalis_packets::Timestamp;
use kalis_telemetry::check_bundle;
use kalis_telemetry::json::{parse, JsonValue};

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ops listener");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: kalis\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let code = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

fn main() -> ExitCode {
    let port: u16 = std::env::args()
        .nth(1)
        .map(|p| p.parse().expect("PORT must be a u16"))
        .unwrap_or(0);
    let mut kalis = Kalis::builder(KalisId::new("K1"))
        .with_default_modules()
        .with_ops(OpsConfig::on_port(port))
        .build();
    let addr = kalis.ops_addr().expect("ops listener bound");
    println!("kalis-ops listening on http://{addr}");

    // The state-exhaustion spray: 400 fabricated identities in 8
    // bursts. Eviction pressure is the anomaly the recorder latches on.
    let mut last = Timestamp::ZERO;
    let spray = spray_trace(42, 400, 8);
    let packets = spray.len();
    for packet in spray {
        last = last.max(packet.timestamp);
        kalis.ingest(packet);
    }
    kalis.tick(last + Duration::from_secs(2));
    println!(
        "ingested {packets} packets, recorder latched {} capture(s), last trigger {}",
        kalis.diag_bundles().len(),
        kalis.diag_last_trigger().unwrap_or("none"),
    );

    let (code, index) = http_get(addr, "/debug/diag");
    assert_eq!(code, 200, "GET /debug/diag must serve the index");
    let doc = parse(&index).expect("/debug/diag serves valid JSON");
    let bundles = doc
        .get("bundles")
        .and_then(JsonValue::as_arr)
        .expect("index lists bundles");
    println!("GET /debug/diag -> {} retained bundle(s)", bundles.len());
    let newest = bundles
        .last()
        .and_then(JsonValue::as_str)
        .expect("the spray must have latched at least one capture");

    let (code, bundle) = http_get(addr, &format!("/debug/diag/{newest}"));
    assert_eq!(code, 200, "GET /debug/diag/{newest} must serve the bundle");

    std::fs::create_dir_all("target/diag").expect("create target/diag");
    std::fs::write("target/diag/index.json", &index).expect("write index.json");
    std::fs::write("target/diag/bundle.json", &bundle).expect("write bundle.json");
    println!("wrote target/diag/index.json ({} bytes)", index.len());
    println!("wrote target/diag/bundle.json ({} bytes)", bundle.len());

    // The CI gate: the served bundle must satisfy the strict checker
    // (schema fields, monotonic frame times, delta/base coherence,
    // journal tail ordering).
    match check_bundle(&bundle) {
        Ok(stats) => {
            println!(
                "GET /debug/diag/{newest} -> bundle clean (trigger {}, {} frames, {} journal entries)",
                stats.trigger, stats.frames, stats.journal_entries,
            );
            ExitCode::SUCCESS
        }
        Err(problem) => {
            eprintln!("bundle violation: {problem}");
            ExitCode::FAILURE
        }
    }
}
