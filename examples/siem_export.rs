//! SIEM integration: subscribe to a Kalis node's event stream on a
//! separate thread and export every alert as a CEF line — the paper's
//! "data source for multisource security information management (SIEM)
//! systems" role.
//!
//! Run with: `cargo run --example siem_export`

use kalis_bench::scenarios::{Scenario, ScenarioKind};
use kalis_core::bus::KalisEvent;
use kalis_core::siem;
use kalis_core::{Kalis, KalisId};

fn main() {
    let scenario = Scenario::build(ScenarioKind::IcmpFlood, 21, 4);
    let mut kalis = Kalis::builder(KalisId::new("K1"))
        .with_default_modules()
        .build();

    // The SIEM uploader lives on its own thread, fed by the event bus.
    let events = kalis.subscribe();
    let uploader = std::thread::spawn(move || {
        let mut lines = Vec::new();
        while let Ok(event) = events.recv() {
            if let KalisEvent::AlertRaised(alert) = event {
                lines.push(siem::to_cef(&alert));
            }
        }
        lines
    });

    for packet in scenario.captures {
        kalis.ingest(packet);
    }
    drop(kalis); // closes the bus; the uploader drains and exits

    let lines = uploader.join().expect("uploader thread");
    println!("exported {} CEF events:", lines.len());
    for line in &lines {
        println!("{line}");
    }
    assert!(!lines.is_empty(), "the flood must produce SIEM events");
    assert!(lines.iter().all(|l| l.starts_with("CEF:0|Kalis|")));
}
